//! Property-style tests for the modeling substrate: textual round-trips,
//! diff/apply identity, and conformance stability.
//!
//! Models are generated with a small local SplitMix64 generator over fixed
//! seeds, so the suite is deterministic and dependency-free (this crate
//! sits at the bottom of the workspace and cannot use the simulator's RNG).

use mddsm_meta::diff::{apply, diff, equivalent, DiffOptions};
use mddsm_meta::model::Model;
use mddsm_meta::text;
use mddsm_meta::Value;

/// Minimal deterministic generator (SplitMix64) for test-case shapes.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[lo, hi)` (modulo bias is irrelevant here).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Lowercase ASCII word with length in `[min_len, max_len]`.
    fn word(&mut self, min_len: u64, max_len: u64) -> String {
        let len = self.range(min_len, max_len + 1) as usize;
        (0..len)
            .map(|_| char::from(b'a' + self.range(0, 23) as u8))
            .collect()
    }
}

/// A generated model: a set of uniquely-named objects of a few classes with
/// random attributes and random (valid) references between them.
fn arb_model(gen: &mut Gen) -> Model {
    const CLASSES: [&str; 3] = ["Node", "Graph", "Link"];
    let n = gen.range(0, 12) as usize;
    let mut m = Model::new("mm");
    let mut ids = Vec::new();
    for i in 0..n {
        let class = CLASSES[gen.range(0, CLASSES.len() as u64) as usize];
        let id = m.create(class);
        // Unique name so diffing keys are unambiguous.
        m.set_attr(id, "name", Value::from(format!("obj{i}")));
        for _ in 0..gen.range(0, 4) {
            let k = gen.word(1, 6);
            if k == "name" {
                continue;
            }
            let v = match gen.range(0, 4) {
                0 => Value::Int(gen.next() as i64),
                1 => Value::Str(gen.word(0, 8)),
                2 => Value::Bool(gen.range(0, 2) == 0),
                // Finite floats only; NaN breaks value equality by design.
                _ => Value::Float((gen.range(0, 2000) as f64 - 1000.0) / 8.0),
            };
            m.set_attr(id, k, v);
        }
        ids.push(id);
    }
    if !ids.is_empty() {
        for _ in 0..gen.range(0, 6) {
            let src = ids[gen.range(0, ids.len() as u64) as usize];
            let slot = gen.word(1, 5);
            let targets: Vec<_> = (0..gen.range(0, 3))
                .map(|_| ids[gen.range(0, ids.len() as u64) as usize])
                .collect();
            if !targets.is_empty() {
                m.set_refs(src, slot, targets);
            }
        }
    }
    m
}

#[test]
fn textual_roundtrip_is_identity() {
    for case in 0..128u64 {
        let m = arb_model(&mut Gen(0xA1_0000 + case));
        let written = text::write(&m);
        let parsed = text::parse(&written).expect("written model must parse");
        assert_eq!(&m, &parsed);
        // And writing again is stable (canonical form).
        assert_eq!(written, text::write(&parsed));
    }
}

#[test]
fn diff_of_model_with_itself_is_empty() {
    for case in 0..128u64 {
        let m = arb_model(&mut Gen(0xA2_0000 + case));
        let opts = DiffOptions::default();
        assert!(diff(&m, &m, &opts).is_empty());
        assert!(equivalent(&m, &m, &opts));
    }
}

#[test]
fn diff_apply_reaches_target() {
    for case in 0..128u64 {
        let mut gen = Gen(0xA3_0000 + case);
        let a = arb_model(&mut gen);
        let b = arb_model(&mut gen);
        let opts = DiffOptions::default();
        let cl = diff(&a, &b, &opts);
        let mut patched = a.clone();
        apply(&mut patched, &cl, &opts).expect("apply must succeed");
        assert!(
            equivalent(&patched, &b, &opts),
            "apply(diff(a,b)) must be equivalent to b\nchanges: {cl:?}"
        );
        // Empty diff afterwards.
        assert!(diff(&patched, &b, &opts).is_empty());
    }
}

#[test]
fn diff_size_bounded_by_total_objects() {
    for case in 0..128u64 {
        let mut gen = Gen(0xA4_0000 + case);
        let a = arb_model(&mut gen);
        let b = arb_model(&mut gen);
        // Each object contributes at most 1 create/delete plus one change
        // per touched slot; a gross upper bound is objects * (slots + 1).
        let opts = DiffOptions::default();
        let cl = diff(&a, &b, &opts);
        let slots = |m: &Model| {
            m.iter()
                .map(|(_, o)| o.attrs.len() + o.refs.len() + 1)
                .sum::<usize>()
        };
        assert!(cl.len() <= slots(&a) + slots(&b));
    }
}

#[test]
fn weave_with_empty_is_identity() {
    for case in 0..128u64 {
        let m = arb_model(&mut Gen(0xA5_0000 + case));
        let empty = Model::new("mm");
        let w = mddsm_meta::weave::weave(&[m.clone(), empty]).expect("no conflicts");
        let opts = DiffOptions::default();
        assert!(equivalent(&w, &m, &opts));
    }
}

#[test]
fn weave_is_idempotent() {
    for case in 0..128u64 {
        let m = arb_model(&mut Gen(0xA6_0000 + case));
        let w = mddsm_meta::weave::weave(&[m.clone(), m.clone()]).expect("self-weave agrees");
        let opts = DiffOptions::default();
        assert!(equivalent(&w, &m, &opts));
    }
}

#[test]
fn constraint_parser_never_panics() {
    for case in 0..128u64 {
        let mut gen = Gen(0xA7_0000 + case);
        let len = gen.range(0, 41) as usize;
        let src: String = (0..len)
            .map(|_| char::from(b' ' + gen.range(0, 95) as u8))
            .collect();
        let _ = mddsm_meta::constraint::parse(&src);
    }
}

#[test]
fn text_parser_never_panics() {
    for case in 0..128u64 {
        let mut gen = Gen(0xA8_0000 + case);
        let len = gen.range(0, 81) as usize;
        let src: String = (0..len)
            .map(|_| {
                if gen.range(0, 12) == 0 {
                    '\n'
                } else {
                    char::from(b' ' + gen.range(0, 95) as u8)
                }
            })
            .collect();
        let _ = text::parse(&src);
    }
}
