//! Property-based tests for the modeling substrate: textual round-trips,
//! diff/apply identity, and conformance stability.

use mddsm_meta::diff::{apply, diff, equivalent, DiffOptions};
use mddsm_meta::model::Model;
use mddsm_meta::text;
use mddsm_meta::Value;
use proptest::prelude::*;

/// A generated model: a set of uniquely-named objects of a few classes with
/// random attributes and random (valid) references between them.
fn arb_model() -> impl Strategy<Value = Model> {
    let classes = prop::sample::select(vec!["Node", "Graph", "Link"]);
    let attr_val = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,8}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        // Finite floats only; NaN breaks value equality by design.
        (-1000i32..1000).prop_map(|i| Value::Float(f64::from(i) / 8.0)),
    ];
    let obj = (classes, prop::collection::vec(("[a-w]{1,6}", attr_val), 0..4));
    prop::collection::vec(obj, 0..12).prop_flat_map(|objs| {
        let n = objs.len();
        let refs = prop::collection::vec(
            (0..n.max(1), "[a-w]{1,5}", prop::collection::vec(0..n.max(1), 0..3)),
            0..6,
        );
        refs.prop_map(move |refs| {
            let mut m = Model::new("mm");
            let mut ids = Vec::new();
            for (i, (class, attrs)) in objs.iter().enumerate() {
                let id = m.create(*class);
                // Unique name so diffing keys are unambiguous.
                m.set_attr(id, "name", Value::from(format!("obj{i}")));
                for (k, v) in attrs {
                    if k != "name" {
                        m.set_attr(id, k.clone(), v.clone());
                    }
                }
                ids.push(id);
            }
            if !ids.is_empty() {
                for (src, slot, targets) in &refs {
                    let t: Vec<_> = targets.iter().map(|j| ids[*j]).collect();
                    if !t.is_empty() {
                        m.set_refs(ids[*src], slot.clone(), t);
                    }
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn textual_roundtrip_is_identity(m in arb_model()) {
        let written = text::write(&m);
        let parsed = text::parse(&written).expect("written model must parse");
        prop_assert_eq!(&m, &parsed);
        // And writing again is stable (canonical form).
        prop_assert_eq!(written, text::write(&parsed));
    }

    #[test]
    fn diff_of_model_with_itself_is_empty(m in arb_model()) {
        let opts = DiffOptions::default();
        prop_assert!(diff(&m, &m, &opts).is_empty());
        prop_assert!(equivalent(&m, &m, &opts));
    }

    #[test]
    fn diff_apply_reaches_target(a in arb_model(), b in arb_model()) {
        let opts = DiffOptions::default();
        let cl = diff(&a, &b, &opts);
        let mut patched = a.clone();
        apply(&mut patched, &cl, &opts).expect("apply must succeed");
        prop_assert!(equivalent(&patched, &b, &opts),
            "apply(diff(a,b)) must be equivalent to b\nchanges: {:?}", cl);
        // Empty diff afterwards.
        prop_assert!(diff(&patched, &b, &opts).is_empty());
    }

    #[test]
    fn diff_size_bounded_by_total_objects(a in arb_model(), b in arb_model()) {
        // Each object contributes at most 1 create/delete plus one change
        // per touched slot; a gross upper bound is objects * (slots + 1).
        let opts = DiffOptions::default();
        let cl = diff(&a, &b, &opts);
        let slots = |m: &Model| m.iter()
            .map(|(_, o)| o.attrs.len() + o.refs.len() + 1)
            .sum::<usize>();
        prop_assert!(cl.len() <= slots(&a) + slots(&b));
    }

    #[test]
    fn weave_with_empty_is_identity(m in arb_model()) {
        let empty = Model::new("mm");
        let w = mddsm_meta::weave::weave(&[m.clone(), empty]).expect("no conflicts");
        let opts = DiffOptions::default();
        prop_assert!(equivalent(&w, &m, &opts));
    }

    #[test]
    fn weave_is_idempotent(m in arb_model()) {
        let w = mddsm_meta::weave::weave(&[m.clone(), m.clone()]).expect("self-weave agrees");
        let opts = DiffOptions::default();
        prop_assert!(equivalent(&w, &m, &opts));
    }

    #[test]
    fn constraint_parser_never_panics(src in "[ -~]{0,40}") {
        let _ = mddsm_meta::constraint::parse(&src);
    }

    #[test]
    fn text_parser_never_panics(src in "[ -~\\n]{0,80}") {
        let _ = text::parse(&src);
    }
}
