//! # MD-DSM: Model-Driven Domain-Specific Middleware
//!
//! A from-scratch Rust reproduction of *Model-Driven Domain-Specific
//! Middleware* (Costa, Morris, Kon, Clarke — ICDCS 2017): middleware
//! platforms are **generated from models** (a domain-independent middleware
//! metamodel describes their structure), tailored to **application
//! domains** via separately-packaged domain knowledge, and act as
//! **model-execution engines** that dynamically interpret applications
//! written in domain-specific modeling languages.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`meta`] | `mddsm-meta` | modeling substrate: metamodels, models, OCL-lite constraints, textual syntax, diffing (EMF substitute) |
//! | [`sim`] | `mddsm-sim` | discrete-event simulation substrate (testbed substitute) |
//! | [`runtime`] | `mddsm-runtime` | generic runtime environment: component factory, templates, containers, models@runtime |
//! | [`synthesis`] | `mddsm-synthesis` | Synthesis layer: model comparator, LTSs, change interpreter, control scripts |
//! | [`controller`] | `mddsm-controller` | Controller layer: DSCs, procedures/EUs, intent models, stack machine, Case 1/2 classification |
//! | [`broker`] | `mddsm-broker` | Broker layer: model-defined managers, action dispatch, MAPE-K autonomic loop |
//! | [`ui`] | `mddsm-ui` | UI layer: DSML environments and typed editing sessions |
//! | [`core`] | `mddsm-core` | platform assembly: middleware metamodel (Fig. 5), domain knowledge, the generated platform |
//! | [`cvm`] | `cvm` | communication domain (CML/CVM) + the §VII-A baselines |
//! | [`mgridvm`] | `mgridvm` | smart-microgrid domain (MGridML/MGridVM) |
//! | [`ssvm`] | `ssvm` | smart-spaces domain (2SML/2SVM, split deployment) |
//! | [`csvm`] | `csvm` | crowdsensing domain (CSML/CSVM, on-the-fly query changes) |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! 1. define an application DSML as a [`meta::Metamodel`];
//! 2. encode the domain's synthesis semantics as a
//!    [`synthesis::Lts`] and its operations as
//!    [`controller`] DSCs/procedures;
//! 3. describe the platform structure as a model of the middleware
//!    metamodel ([`core::PlatformModelBuilder`]) plus a broker model
//!    ([`broker::BrokerModelBuilder`]);
//! 4. generate the platform with [`core::PlatformBuilder`] and submit
//!    application models to it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use csvm;
pub use cvm;
pub use mddsm_broker as broker;
pub use mddsm_controller as controller;
pub use mddsm_core as core;
pub use mddsm_meta as meta;
pub use mddsm_runtime as runtime;
pub use mddsm_sim as sim;
pub use mddsm_synthesis as synthesis;
pub use mddsm_ui as ui;
pub use mgridvm;
pub use ssvm;
